package graph

import (
	"errors"
	"fmt"
	"math"

	"oipa/internal/topic"
)

// MultiplexLayer is one layer of a multiplex network: a directed graph
// with its own edge set and topic probabilities, plus the identity
// mapping tying the layer's local node ids to the shared universe.
type MultiplexLayer struct {
	G *Graph
	// ToGlobal[lu] is the universe id of the layer-local node lu. nil
	// means the layer is numbered directly in universe ids (local node
	// lu IS universe node lu); then G.N() must not exceed the universe
	// size.
	ToGlobal []int32
}

// Multiplex is an ordered set of layers over a shared node universe
// [0, n): one user participates in several networks, each with its own
// diffusion edges, and activation couples across layers at shared
// identities (multiplex influence maximization in the sense of Kuhnle
// et al.). All layers share one topic space.
//
// A Multiplex is immutable after construction and safe for concurrent
// use; each layer owns a LayoutCache so repeated preparations of the
// same pieces reuse layouts exactly like the single-graph path.
type Multiplex struct {
	n      int
	z      int
	layers []MultiplexLayer
	// toLocal[a][u] is layer a's local id of universe node u (-1 when
	// absent); nil when layer a is identity-mapped.
	toLocal [][]int32
	caches  []*LayoutCache
	fp      uint64
}

// NewMultiplex builds a multiplex over a universe of n nodes (n <= 0
// infers the smallest universe covering every layer). layoutCapacity
// bounds each layer's piece-layout cache (<= 0 = unbounded).
func NewMultiplex(n int, layers []MultiplexLayer, layoutCapacity int) (*Multiplex, error) {
	if len(layers) == 0 {
		return nil, errors.New("graph: multiplex needs at least one layer")
	}
	z := layers[0].G.Z()
	if n <= 0 {
		for _, l := range layers {
			if l.ToGlobal == nil {
				if l.G.N() > n {
					n = l.G.N()
				}
				continue
			}
			for _, u := range l.ToGlobal {
				if int(u) >= n {
					n = int(u) + 1
				}
			}
		}
	}
	m := &Multiplex{n: n, z: z, layers: layers, toLocal: make([][]int32, len(layers)), caches: make([]*LayoutCache, len(layers))}
	for a, l := range layers {
		if l.G == nil {
			return nil, fmt.Errorf("graph: multiplex layer %d has no graph", a)
		}
		if l.G.Z() != z {
			return nil, fmt.Errorf("graph: multiplex layer %d has %d topics, layer 0 has %d", a, l.G.Z(), z)
		}
		if l.ToGlobal == nil {
			if l.G.N() > n {
				return nil, fmt.Errorf("graph: identity layer %d has %d nodes, universe %d", a, l.G.N(), n)
			}
		} else {
			if len(l.ToGlobal) != l.G.N() {
				return nil, fmt.Errorf("graph: layer %d maps %d of %d nodes", a, len(l.ToGlobal), l.G.N())
			}
			tl := make([]int32, n)
			for i := range tl {
				tl[i] = -1
			}
			for lu, u := range l.ToGlobal {
				if u < 0 || int(u) >= n {
					return nil, fmt.Errorf("graph: layer %d node %d maps outside universe [0,%d)", a, lu, n)
				}
				if tl[u] >= 0 {
					return nil, fmt.Errorf("graph: layer %d maps nodes %d and %d to the same identity %d", a, tl[u], lu, u)
				}
				tl[u] = int32(lu)
			}
			m.toLocal[a] = tl
		}
		m.caches[a] = NewLayoutCache(l.G, layoutCapacity)
	}
	m.fp = m.fingerprint()
	return m, nil
}

// N returns the universe size.
func (m *Multiplex) N() int { return m.n }

// Z returns the shared topic-space size.
func (m *Multiplex) Z() int { return m.z }

// L returns the number of layers.
func (m *Multiplex) L() int { return len(m.layers) }

// Layer returns layer a's graph.
func (m *Multiplex) Layer(a int) *Graph { return m.layers[a].G }

// ToGlobal returns layer a's local→universe mapping (nil = identity).
func (m *Multiplex) ToGlobal(a int) []int32 { return m.layers[a].ToGlobal }

// ToLocal returns layer a's universe→local mapping with -1 for absent
// nodes (nil = identity).
func (m *Multiplex) ToLocal(a int) []int32 { return m.toLocal[a] }

// LayerSizes returns the per-layer local node counts in layer order.
func (m *Multiplex) LayerSizes() []int {
	sizes := make([]int, len(m.layers))
	for a, l := range m.layers {
		sizes[a] = l.G.N()
	}
	return sizes
}

// Layouts returns one PieceLayout per layer for a piece with topic
// distribution t, built through (and cached by) each layer's
// LayoutCache.
func (m *Multiplex) Layouts(t topic.Vector) ([]*PieceLayout, error) {
	out := make([]*PieceLayout, len(m.layers))
	for a, c := range m.caches {
		lay, err := c.Get(t)
		if err != nil {
			return nil, fmt.Errorf("graph: multiplex layer %d: %w", a, err)
		}
		out[a] = lay
	}
	return out, nil
}

// LayoutCacheStats sums the hit/miss counters across the per-layer
// caches.
func (m *Multiplex) LayoutCacheStats() (hits, misses int64) {
	for _, c := range m.caches {
		h, ms := c.Stats()
		hits += h
		misses += ms
	}
	return hits, misses
}

// Fingerprint is a 64-bit content digest of the multiplex — universe
// size, topic space, and every layer's edge structure, probabilities and
// identity mapping. Two multiplexes built from equal inputs fingerprint
// identically, so services can key prepared artifacts by it.
func (m *Multiplex) Fingerprint() uint64 { return m.fp }

func (m *Multiplex) fingerprint() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(x uint64) {
		for s := 0; s < 64; s += 8 {
			h ^= (x >> s) & 0xff
			h *= prime64
		}
	}
	mix(uint64(m.n))
	mix(uint64(m.z))
	mix(uint64(len(m.layers)))
	for _, l := range m.layers {
		g := l.G
		mix(uint64(g.N()))
		mix(uint64(g.M()))
		for eid := int32(0); int(eid) < g.M(); eid++ {
			u, v := g.EdgeEndpoints(eid)
			mix(uint64(uint32(u))<<32 | uint64(uint32(v)))
			mix(g.EdgeProb(eid).Hash())
		}
		for _, u := range l.ToGlobal {
			mix(uint64(uint32(u)))
		}
	}
	return h
}

// CombinedGraph materializes the gateway-node reduction of the
// multiplex into one explicit Graph (see the traverse package's doc.go
// for the construction): gateways occupy ids [0, n), layer copies
// [n, n+C) and samplers [n+C, n+2C), where C is the total layer-local
// node count. Every layer edge wl→ul with topic vector p becomes
// copy(a,wl)→sampler(a,ul) carrying p, and the coupling edges
// sampler→copy, copy→gateway and gateway→copy carry probability 1 on
// every topic, so any campaign piece activates them surely.
//
// A diffusion on the combined graph restricted to gateway nodes is
// exactly the multiplex diffusion; the reduction exists to cross-check
// traverse.MultiWalker draw-for-draw and is quadratic in nothing — the
// combined graph has n + 2C nodes and M + 2C + C edges.
func (m *Multiplex) CombinedGraph() (*Graph, error) {
	c := 0
	base := make([]int32, len(m.layers)+1)
	for a, l := range m.layers {
		base[a+1] = base[a] + int32(l.G.N())
	}
	c = int(base[len(m.layers)])
	total := m.n + 2*c
	if int64(m.n)+2*int64(c) > math.MaxInt32 {
		return nil, fmt.Errorf("graph: combined multiplex of %d nodes overflows int32 ids", int64(m.n)+2*int64(c))
	}
	ones := topic.Vector{Idx: make([]int32, m.z), Val: make([]float64, m.z)}
	for z := range ones.Idx {
		ones.Idx[z] = int32(z)
		ones.Val[z] = 1
	}
	copyID := func(a int, lu int32) int32 { return int32(m.n) + base[a] + lu }
	samplerID := func(a int, lu int32) int32 { return int32(m.n) + int32(c) + base[a] + lu }

	b := NewBuilder(total, m.z)
	for a, l := range m.layers {
		g := l.G
		for wl := int32(0); int(wl) < g.N(); wl++ {
			to, edges := g.OutNeighbors(wl)
			for i, ul := range to {
				if err := b.AddEdge(copyID(a, wl), samplerID(a, ul), g.EdgeProb(edges[i])); err != nil {
					return nil, err
				}
			}
		}
		for lu := int32(0); int(lu) < g.N(); lu++ {
			u := lu
			if l.ToGlobal != nil {
				u = l.ToGlobal[lu]
			}
			if err := b.AddEdge(samplerID(a, lu), copyID(a, lu), ones); err != nil {
				return nil, err
			}
			if err := b.AddEdge(copyID(a, lu), u, ones); err != nil {
				return nil, err
			}
			if err := b.AddEdge(u, copyID(a, lu), ones); err != nil {
				return nil, err
			}
		}
	}
	return b.Build()
}
