// Package graph implements the social-network substrate of the paper
// (§III-A): a directed graph G(V, E) in which every edge e = (u, v) carries
// a topic-wise influence vector p(e); p(e|z) is the probability that u
// activates v when propagating a message entirely about topic z. For a
// viral piece with topic distribution t, the effective activation
// probability across e is p(t, e) = t · p(e).
//
// The representation is a compressed sparse row (CSR) adjacency in both
// directions: forward adjacency drives the Monte-Carlo cascade simulator
// and reverse adjacency drives reverse-reachable set sampling. Nodes are
// dense int32 identifiers in [0, N).
//
// For sampling hot paths, PieceLayout (layout.go) materializes one
// piece's activation probabilities in CSR position order for both
// directions and precomputes per-node uniformity metadata, enabling
// sequential probability reads and geometric-skip edge sampling in the
// rrset and cascade packages.
package graph

import (
	"errors"
	"fmt"
	"sort"

	"oipa/internal/topic"
)

// Graph is an immutable directed graph with topic-aware edge probabilities.
// Construct one with a Builder; the zero value is an empty graph.
type Graph struct {
	n int32
	z int32

	// Forward CSR: out-neighbors of u are outTo[outOff[u]:outOff[u+1]],
	// and outEdge holds the matching edge identifiers.
	outOff  []int64
	outTo   []int32
	outEdge []int32

	// Reverse CSR: in-neighbors of v are inFrom[inOff[v]:inOff[v+1]],
	// inEdge holds the identifier of the forward edge (from -> v).
	inOff  []int64
	inFrom []int32
	inEdge []int32

	// probs[eid] is the topic-wise influence vector of edge eid.
	probs []topic.Vector
}

// N returns the number of vertices.
func (g *Graph) N() int { return int(g.n) }

// M returns the number of edges.
func (g *Graph) M() int { return len(g.probs) }

// Z returns the size of the topic space.
func (g *Graph) Z() int { return int(g.z) }

// OutDegree returns the out-degree of u.
func (g *Graph) OutDegree(u int32) int {
	return int(g.outOff[u+1] - g.outOff[u])
}

// InDegree returns the in-degree of v.
func (g *Graph) InDegree(v int32) int {
	return int(g.inOff[v+1] - g.inOff[v])
}

// OutNeighbors returns the out-neighbor slice of u and the parallel slice
// of edge identifiers. The returned slices alias internal storage and must
// not be modified.
func (g *Graph) OutNeighbors(u int32) (to []int32, edges []int32) {
	lo, hi := g.outOff[u], g.outOff[u+1]
	return g.outTo[lo:hi], g.outEdge[lo:hi]
}

// InNeighbors returns the in-neighbor slice of v and the parallel slice of
// forward-edge identifiers. The returned slices alias internal storage and
// must not be modified.
func (g *Graph) InNeighbors(v int32) (from []int32, edges []int32) {
	lo, hi := g.inOff[v], g.inOff[v+1]
	return g.inFrom[lo:hi], g.inEdge[lo:hi]
}

// EdgeProb returns the topic-wise influence vector of edge eid. The
// returned vector aliases internal storage.
func (g *Graph) EdgeProb(eid int32) topic.Vector { return g.probs[eid] }

// PieceProbs computes, for every edge, the activation probability of a
// viral piece with topic distribution t: p(t, e) = t · p(e), clamped into
// [0, 1]. This materializes the per-piece homogeneous influence graph the
// paper constructs for each t_j (§V-A) and is computed once per piece.
func (g *Graph) PieceProbs(t topic.Vector) []float64 {
	out := make([]float64, len(g.probs))
	for eid, p := range g.probs {
		v := t.Dot(p)
		if v < 0 {
			v = 0
		} else if v > 1 {
			v = 1
		}
		out[eid] = v
	}
	return out
}

// AvgDegree returns the average out-degree m/n.
func (g *Graph) AvgDegree() float64 {
	if g.n == 0 {
		return 0
	}
	return float64(g.M()) / float64(g.n)
}

// AvgTopicNNZ returns the average number of non-zero topic entries per
// edge; the paper reports 1.5 for the tweet dataset and uses it to explain
// why single-piece baselines collapse there.
func (g *Graph) AvgTopicNNZ() float64 {
	if len(g.probs) == 0 {
		return 0
	}
	total := 0
	for _, p := range g.probs {
		total += p.NNZ()
	}
	return float64(total) / float64(len(g.probs))
}

// OutDegrees returns the out-degree sequence as float64s (for the stats
// package's power-law estimator).
func (g *Graph) OutDegrees() []float64 {
	d := make([]float64, g.n)
	for u := int32(0); u < g.n; u++ {
		d[u] = float64(g.OutDegree(u))
	}
	return d
}

// Validate re-checks structural invariants; primarily used after
// deserialization.
func (g *Graph) Validate() error {
	if int64(len(g.outTo)) != int64(len(g.probs)) || int64(len(g.inFrom)) != int64(len(g.probs)) {
		return errors.New("graph: CSR arrays disagree with edge count")
	}
	if len(g.outOff) != int(g.n)+1 || len(g.inOff) != int(g.n)+1 {
		return errors.New("graph: offset arrays have wrong length")
	}
	for u := int32(0); u < g.n; u++ {
		if g.outOff[u] > g.outOff[u+1] || g.inOff[u] > g.inOff[u+1] {
			return fmt.Errorf("graph: non-monotone offsets at node %d", u)
		}
	}
	for i, v := range g.outTo {
		if v < 0 || v >= g.n {
			return fmt.Errorf("graph: out-edge %d targets invalid node %d", i, v)
		}
	}
	for i, v := range g.inFrom {
		if v < 0 || v >= g.n {
			return fmt.Errorf("graph: in-edge %d sources invalid node %d", i, v)
		}
	}
	for eid, p := range g.probs {
		if err := p.Validate(); err != nil {
			return fmt.Errorf("graph: edge %d probability vector: %w", eid, err)
		}
		if nnz := p.NNZ(); nnz > 0 && p.Idx[nnz-1] >= g.z {
			return fmt.Errorf("graph: edge %d references topic %d outside [0,%d)", eid, p.Idx[nnz-1], g.z)
		}
		for _, v := range p.Val {
			if v > 1 {
				return fmt.Errorf("graph: edge %d has probability %v > 1", eid, v)
			}
		}
	}
	return nil
}

// Builder accumulates edges and produces an immutable Graph. Duplicate
// (u, v) pairs are rejected at Build time; self-loops are allowed (they are
// harmless for reachability but generators avoid them).
type Builder struct {
	n     int
	z     int
	from  []int32
	to    []int32
	probs []topic.Vector
}

// NewBuilder returns a builder for a graph with n vertices over z topics.
func NewBuilder(n, z int) *Builder {
	return &Builder{n: n, z: z}
}

// AddEdge appends a directed edge u -> v with topic-wise influence vector
// p. The vector is not copied; callers must not mutate it afterwards.
func (b *Builder) AddEdge(u, v int32, p topic.Vector) error {
	if u < 0 || int(u) >= b.n || v < 0 || int(v) >= b.n {
		return fmt.Errorf("graph: edge (%d,%d) outside [0,%d)", u, v, b.n)
	}
	if err := p.Validate(); err != nil {
		return fmt.Errorf("graph: edge (%d,%d): %w", u, v, err)
	}
	if nnz := p.NNZ(); nnz > 0 && int(p.Idx[nnz-1]) >= b.z {
		return fmt.Errorf("graph: edge (%d,%d) references topic %d outside [0,%d)", u, v, p.Idx[nnz-1], b.z)
	}
	for _, val := range p.Val {
		if val > 1 {
			return fmt.Errorf("graph: edge (%d,%d) has probability %v > 1", u, v, val)
		}
	}
	b.from = append(b.from, u)
	b.to = append(b.to, v)
	b.probs = append(b.probs, p)
	return nil
}

// M returns the number of edges added so far.
func (b *Builder) M() int { return len(b.from) }

// Build constructs the immutable Graph. Edge identifiers are assigned in
// (u, v) sorted order, making the result independent of insertion order.
func (b *Builder) Build() (*Graph, error) {
	m := len(b.from)
	order := make([]int32, m)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(i, j int) bool {
		a, c := order[i], order[j]
		if b.from[a] != b.from[c] {
			return b.from[a] < b.from[c]
		}
		return b.to[a] < b.to[c]
	})
	for i := 1; i < m; i++ {
		a, c := order[i-1], order[i]
		if b.from[a] == b.from[c] && b.to[a] == b.to[c] {
			return nil, fmt.Errorf("graph: duplicate edge (%d,%d)", b.from[a], b.to[a])
		}
	}

	g := &Graph{
		n:       int32(b.n),
		z:       int32(b.z),
		outOff:  make([]int64, b.n+1),
		outTo:   make([]int32, m),
		outEdge: make([]int32, m),
		inOff:   make([]int64, b.n+1),
		inFrom:  make([]int32, m),
		inEdge:  make([]int32, m),
		probs:   make([]topic.Vector, m),
	}

	// Forward CSR directly from the sorted order.
	for u := range g.outOff {
		g.outOff[u] = 0
	}
	for _, idx := range order {
		g.outOff[b.from[idx]+1]++
	}
	for u := 0; u < b.n; u++ {
		g.outOff[u+1] += g.outOff[u]
	}
	for eid, idx := range order {
		g.probs[eid] = b.probs[idx]
	}
	cursor := make([]int64, b.n)
	for eid, idx := range order {
		u := b.from[idx]
		pos := g.outOff[u] + cursor[u]
		cursor[u]++
		g.outTo[pos] = b.to[idx]
		g.outEdge[pos] = int32(eid)
	}

	// Reverse CSR by counting sort over destinations.
	for _, idx := range order {
		g.inOff[b.to[idx]+1]++
	}
	for v := 0; v < b.n; v++ {
		g.inOff[v+1] += g.inOff[v]
	}
	for i := range cursor {
		cursor[i] = 0
	}
	for eid, idx := range order {
		v := b.to[idx]
		pos := g.inOff[v] + cursor[v]
		cursor[v]++
		g.inFrom[pos] = b.from[idx]
		g.inEdge[pos] = int32(eid)
	}
	return g, nil
}

// EdgeEndpoints returns the (from, to) pair of edge eid. It costs a binary
// search over the offset array for the source; intended for tests and
// tooling, not hot paths.
func (g *Graph) EdgeEndpoints(eid int32) (from, to int32) {
	// The forward CSR stores edges grouped by source in sorted order; find
	// the position of eid in outEdge. Edge ids are assigned in (u,v) order,
	// which is exactly the forward CSR layout, so position == eid.
	pos := int64(eid)
	u := int32(sort.Search(int(g.n), func(u int) bool { return g.outOff[u+1] > pos }))
	return u, g.outTo[pos]
}
