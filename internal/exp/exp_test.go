package exp

import (
	"bytes"
	"strings"
	"testing"

	"oipa/internal/gen"
	"oipa/internal/topic"
)

// tinyConfig keeps harness tests fast.
func tinyConfig(p gen.Preset) Config {
	c := SmallConfig(p)
	c.Theta = 2000
	c.K = 5
	c.L = 2
	switch p {
	case gen.PresetLastfm:
		c.Scale = 0.1
	case gen.PresetDBLP:
		c.Scale = 0.001
	case gen.PresetTweet:
		c.Scale = 0.0003
	}
	return c
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig(gen.PresetLastfm)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for name, mutate := range map[string]func(*Config){
		"scale":   func(c *Config) { c.Scale = 0 },
		"theta":   func(c *Config) { c.Theta = 0 },
		"pool":    func(c *Config) { c.PoolFraction = 0 },
		"pool>1":  func(c *Config) { c.PoolFraction = 1.5 },
		"k":       func(c *Config) { c.K = 0 },
		"l":       func(c *Config) { c.L = 0 },
		"ratio":   func(c *Config) { c.BetaOverAlpha = 0 },
		"epsilon": func(c *Config) { c.Epsilon = -1 },
	} {
		c := DefaultConfig(gen.PresetLastfm)
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Fatalf("bad config %q validated", name)
		}
	}
}

func TestConfigModel(t *testing.T) {
	c := DefaultConfig(gen.PresetLastfm)
	c.BetaOverAlpha = 0.5
	m := c.Model()
	if m.Beta != 1 || m.Alpha != 2 {
		t.Fatalf("Model() = %+v, want beta=1 alpha=2", m)
	}
}

func TestBuildWorkload(t *testing.T) {
	w, err := BuildWorkload(tinyConfig(gen.PresetLastfm))
	if err != nil {
		t.Fatal(err)
	}
	if w.Instance.MRR.Theta() != 2000 {
		t.Fatalf("theta = %d", w.Instance.MRR.Theta())
	}
	if w.Campaign.L() != 2 {
		t.Fatalf("campaign pieces = %d", w.Campaign.L())
	}
	if len(w.Pool) == 0 {
		t.Fatal("empty pool")
	}
	if w.Layouts == nil || w.Layouts.Len() != 2 {
		t.Fatal("workload layouts did not route through the cache")
	}
}

// TestDeriveCampaignSharesLayouts pins the Figure-5 sweep economics:
// deriving nested sub-campaigns from one workload reuses the dataset,
// pool and cached piece layouts instead of rebuilding them per point.
func TestDeriveCampaignSharesLayouts(t *testing.T) {
	c := tinyConfig(gen.PresetLastfm)
	base, err := BuildWorkload(c)
	if err != nil {
		t.Fatal(err)
	}
	_, missesBefore := base.Layouts.Stats()
	sub := topic.Campaign{Name: base.Campaign.Name, Pieces: base.Campaign.Pieces[:1]}
	cl := c
	cl.L = 1
	w, err := base.DeriveCampaign(cl, sub)
	if err != nil {
		t.Fatal(err)
	}
	if w.Dataset != base.Dataset {
		t.Fatal("derived workload regenerated the dataset")
	}
	if len(w.Pool) != len(base.Pool) {
		t.Fatal("derived workload rebuilt the promoter pool for identical parameters")
	}
	hits, misses := base.Layouts.Stats()
	if misses != missesBefore {
		t.Fatalf("derivation rebuilt layouts: misses %d -> %d", missesBefore, misses)
	}
	if hits == 0 {
		t.Fatal("derivation never hit the layout cache")
	}
	if w.Instance.Theta() != cl.Theta {
		t.Fatalf("derived instance theta %d, want %d", w.Instance.Theta(), cl.Theta)
	}
	if w.Instance.L() != 1 {
		t.Fatalf("derived instance pieces %d, want 1", w.Instance.L())
	}
	// A config describing a different dataset is rejected, not silently
	// prepared against the wrong graph.
	for name, mutate := range map[string]func(*Config){
		"preset": func(c *Config) { c.Preset = gen.PresetTweet },
		"scale":  func(c *Config) { c.Scale *= 2 },
		"seed":   func(c *Config) { c.Seed++ },
	} {
		bad := cl
		mutate(&bad)
		if _, err := base.DeriveCampaign(bad, sub); err == nil {
			t.Fatalf("DeriveCampaign accepted a mismatched %s", name)
		}
	}
}

func TestTableIII(t *testing.T) {
	rows, err := TableIII([]Config{tinyConfig(gen.PresetLastfm), tinyConfig(gen.PresetTweet)})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	if rows[0].Name != "lastfm" || rows[1].Name != "tweet" {
		t.Fatalf("row names %q, %q", rows[0].Name, rows[1].Name)
	}
	for _, r := range rows {
		if r.Vertices <= 0 || r.Edges <= 0 || r.SampleSeconds < 0 {
			t.Fatalf("implausible row %+v", r)
		}
	}
	var buf bytes.Buffer
	RenderTableIII(&buf, rows)
	if !strings.Contains(buf.String(), "lastfm") {
		t.Fatal("render missing dataset name")
	}
}

func TestFigure3Shape(t *testing.T) {
	rows, err := Figure3(tinyConfig(gen.PresetLastfm), []float64{0.1, 0.5, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	for _, r := range rows {
		if r.Method != MethodBABP || r.Param != "eps" {
			t.Fatalf("unexpected row %+v", r)
		}
		if r.Utility < 0 {
			t.Fatalf("negative utility %+v", r)
		}
	}
}

func TestFigure4ShapeAndOrdering(t *testing.T) {
	rows, err := Figure4(tinyConfig(gen.PresetLastfm), []int{2, 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 { // 2 sweep points x 4 methods
		t.Fatalf("got %d rows, want 8", len(rows))
	}
	util := map[string]map[float64]float64{}
	for _, r := range rows {
		if util[r.Method] == nil {
			util[r.Method] = map[float64]float64{}
		}
		util[r.Method][r.X] = r.Utility
	}
	// The paper's headline ordering: BAB and BAB-P at least match TIM.
	for _, x := range []float64{2, 5} {
		if util[MethodBAB][x] < util[MethodTIM][x]-1e-9 {
			t.Fatalf("BAB (%v) below TIM (%v) at k=%v", util[MethodBAB][x], util[MethodTIM][x], x)
		}
	}
	// Utility grows with k for the BAB family.
	if util[MethodBAB][5] < util[MethodBAB][2] {
		t.Fatal("BAB utility decreased with larger k")
	}
	var buf bytes.Buffer
	RenderRows(&buf, "fig4", rows)
	if !strings.Contains(buf.String(), "BAB-P") {
		t.Fatal("render missing method")
	}
}

func TestFigure5RebuildsPerL(t *testing.T) {
	rows, err := Figure5(tinyConfig(gen.PresetLastfm), []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("got %d rows, want 8", len(rows))
	}
	// At l=1 all methods optimize the same single piece; BAB may not beat
	// TIM there but must not be worse.
	util := map[string]map[float64]float64{}
	for _, r := range rows {
		if util[r.Method] == nil {
			util[r.Method] = map[float64]float64{}
		}
		util[r.Method][r.X] = r.Utility
	}
	if util[MethodBAB][1] < util[MethodTIM][1]-1e-9 {
		t.Fatalf("BAB below TIM at l=1: %v vs %v", util[MethodBAB][1], util[MethodTIM][1])
	}
}

func TestFigure6ModelSweep(t *testing.T) {
	rows, err := Figure6(tinyConfig(gen.PresetLastfm), []float64{0.3, 0.7})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("got %d rows, want 8", len(rows))
	}
	// Larger beta/alpha (easier adoption) cannot reduce BAB's utility.
	util := map[float64]float64{}
	for _, r := range rows {
		if r.Method == MethodBAB {
			util[r.X] = r.Utility
		}
	}
	if util[0.7] < util[0.3] {
		t.Fatalf("BAB utility fell as adoption got easier: %v -> %v", util[0.3], util[0.7])
	}
}

func TestSpeedups(t *testing.T) {
	rows := []Row{
		{Dataset: "d", Method: MethodBAB, X: 10, Seconds: 8},
		{Dataset: "d", Method: MethodBABP, X: 10, Seconds: 2},
		{Dataset: "d", Method: MethodBAB, X: 20, Seconds: 30},
		{Dataset: "d", Method: MethodBABP, X: 20, Seconds: 3},
		{Dataset: "e", Method: MethodBAB, X: 10, Seconds: 5}, // no BAB-P partner
	}
	sp := Speedups(rows)
	if len(sp) != 2 {
		t.Fatalf("got %d speedup rows, want 2", len(sp))
	}
	if sp[0].Speedup != 4 || sp[1].Speedup != 10 {
		t.Fatalf("speedups %+v", sp)
	}
	var buf bytes.Buffer
	RenderSpeedups(&buf, sp)
	if !strings.Contains(buf.String(), "4.0x") {
		t.Fatalf("render missing speedup: %s", buf.String())
	}
}

func TestParamsTable(t *testing.T) {
	var buf bytes.Buffer
	ParamsTable(&buf)
	for _, want := range []string{"k ", "beta/alpha", "eps"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("params table missing %q", want)
		}
	}
}

func TestRunMethodsUnknown(t *testing.T) {
	w, err := BuildWorkload(tinyConfig(gen.PresetLastfm))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := runMethods("x", w.Instance, "k", 1, 0.5, []string{"NOPE"}); err == nil {
		t.Fatal("unknown method accepted")
	}
}
