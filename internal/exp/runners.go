package exp

import (
	"fmt"
	"io"
	"sort"
	"time"

	"oipa/internal/core"
	"oipa/internal/gen"
	"oipa/internal/topic"
)

// Row is one data point of a figure: a (dataset, method, x) triple with
// the measured utility and solver runtime (sampling excluded, as in the
// paper's efficiency comparisons).
type Row struct {
	Dataset string
	Method  string
	Param   string  // the swept parameter's name: "k", "l", "beta/alpha", "eps"
	X       float64 // the swept parameter's value
	Utility float64
	Seconds float64
}

// Methods in paper order.
const (
	MethodIM   = "IM"
	MethodTIM  = "TIM"
	MethodBAB  = "BAB"
	MethodBABP = "BAB-P"
)

// maxSearchNodes bounds branch-and-bound expansions in harness runs so a
// pathological instance degrades to an anytime answer instead of stalling
// a whole sweep. Within the cap both searches report their true certified
// upper bound.
const maxSearchNodes = 2000

// runMethods executes the four compared methods on one instance and
// returns their rows. epsilon parametrizes BAB-P.
func runMethods(dataset string, inst *core.Instance, param string, x float64, epsilon float64, methods []string) ([]Row, error) {
	rows := make([]Row, 0, len(methods))
	for _, m := range methods {
		var res *core.Result
		var err error
		switch m {
		case MethodIM:
			res, err = core.SolveIM(inst, 0xA11CE)
		case MethodTIM:
			res, err = core.SolveTIM(inst)
		case MethodBAB:
			opts := core.DefaultBABOptions()
			opts.MaxNodes = maxSearchNodes
			res, err = core.SolveBAB(inst, opts)
		case MethodBABP:
			opts := core.DefaultBABPOptions()
			opts.Epsilon = epsilon
			opts.MaxNodes = maxSearchNodes
			res, err = core.SolveBABP(inst, opts)
		default:
			return nil, fmt.Errorf("exp: unknown method %q", m)
		}
		if err != nil {
			return nil, fmt.Errorf("exp: %s on %s (%s=%v): %w", m, dataset, param, x, err)
		}
		rows = append(rows, Row{
			Dataset: dataset,
			Method:  m,
			Param:   param,
			X:       x,
			Utility: res.Utility,
			Seconds: res.Elapsed.Seconds(),
		})
	}
	return rows, nil
}

// AllMethods lists the four compared methods in paper order.
func AllMethods() []string {
	return []string{MethodIM, MethodTIM, MethodBAB, MethodBABP}
}

// SummaryRow is one row of Table III.
type SummaryRow struct {
	gen.Summary
	SampleSeconds float64
	Theta         int
}

// TableIII builds each configured dataset, draws its MRR samples, and
// reports the statistics row of the paper's Table III (plus the measured
// per-edge topic sparsity).
func TableIII(cfgs []Config) ([]SummaryRow, error) {
	rows := make([]SummaryRow, 0, len(cfgs))
	for _, c := range cfgs {
		w, err := BuildWorkload(c)
		if err != nil {
			return nil, err
		}
		rows = append(rows, SummaryRow{
			Summary:       w.Dataset.Summarize(),
			SampleSeconds: w.Instance.SampleTime.Seconds(),
			Theta:         c.Theta,
		})
	}
	return rows, nil
}

// Figure3 sweeps the progressive threshold decay ε for BAB-P on one
// dataset (paper Fig. 3: utility degrades mildly as ε grows).
func Figure3(c Config, epsilons []float64) ([]Row, error) {
	w, err := BuildWorkload(c)
	if err != nil {
		return nil, err
	}
	var rows []Row
	for _, eps := range epsilons {
		r, err := runMethods(w.Dataset.Name, w.Instance, "eps", eps, eps, []string{MethodBABP})
		if err != nil {
			return nil, err
		}
		rows = append(rows, r...)
	}
	return rows, nil
}

// Figure4 sweeps the budget k for all four methods (paper Fig. 4: utility
// grows with k for everyone; BAB ≈ BAB-P ≫ TIM > IM; BAB-P's runtime
// advantage over BAB grows with k).
func Figure4(c Config, ks []int) ([]Row, error) {
	w, err := BuildWorkload(c)
	if err != nil {
		return nil, err
	}
	var rows []Row
	for _, k := range ks {
		inst, err := w.Instance.WithK(k)
		if err != nil {
			return nil, err
		}
		r, err := runMethods(w.Dataset.Name, inst, "k", float64(k), c.Epsilon, AllMethods())
		if err != nil {
			return nil, err
		}
		rows = append(rows, r...)
	}
	return rows, nil
}

// Figure5 sweeps the number of viral pieces ℓ (paper Fig. 5: utility
// grows with ℓ; IM/TIM degrade relative to BAB since they optimize a
// single piece). Each ℓ needs fresh MRR samples, but the dataset and
// the per-piece layouts are shared: campaigns are *nested* — the
// ℓ-piece campaign is a prefix of the largest one, so utilities are
// comparable across the sweep — and every sub-campaign preparation is
// derived from the base workload, hitting its layout cache instead of
// regenerating the graph and rebuilding identical layouts per point.
func Figure5(c Config, ls []int) ([]Row, error) {
	maxL := 0
	for _, l := range ls {
		if l > maxL {
			maxL = l
		}
	}
	if maxL == 0 {
		return nil, fmt.Errorf("exp: empty l sweep")
	}
	cm := c
	cm.L = maxL
	base, err := BuildWorkload(cm) // also fixes the full campaign's pieces
	if err != nil {
		return nil, err
	}
	full := base.Campaign
	var rows []Row
	for _, l := range ls {
		cl := c
		cl.L = l
		var w *Workload
		if l == maxL {
			w = base
		} else {
			sub := topic.Campaign{Name: full.Name, Pieces: full.Pieces[:l]}
			w, err = base.DeriveCampaign(cl, sub)
			if err != nil {
				return nil, err
			}
		}
		r, err := runMethods(w.Dataset.Name, w.Instance, "l", float64(l), c.Epsilon, AllMethods())
		if err != nil {
			return nil, err
		}
		rows = append(rows, r...)
	}
	return rows, nil
}

// Figure6 sweeps the β/α ratio (paper Fig. 6: utilities rise with β/α;
// BAB's relative advantage over the baselines grows as β/α shrinks).
// Samples are reused across points: the influence model is independent of
// the adoption model.
func Figure6(c Config, ratios []float64) ([]Row, error) {
	w, err := BuildWorkload(c)
	if err != nil {
		return nil, err
	}
	var rows []Row
	for _, ratio := range ratios {
		cr := c
		cr.BetaOverAlpha = ratio
		inst, err := w.Instance.WithModel(cr.Model())
		if err != nil {
			return nil, err
		}
		r, err := runMethods(w.Dataset.Name, inst, "beta/alpha", ratio, c.Epsilon, AllMethods())
		if err != nil {
			return nil, err
		}
		rows = append(rows, r...)
	}
	return rows, nil
}

// SpeedupRow reports BAB-P's speedup over BAB at one sweep point.
type SpeedupRow struct {
	Dataset string
	X       float64
	Speedup float64
}

// Speedups derives the BAB/BAB-P runtime ratios from figure rows (the
// paper quotes the maxima: 24×, 22×, 8.1× on lastfm, dblp, tweet).
func Speedups(rows []Row) []SpeedupRow {
	type key struct {
		dataset string
		x       float64
	}
	bab := map[key]float64{}
	babp := map[key]float64{}
	for _, r := range rows {
		k := key{r.Dataset, r.X}
		switch r.Method {
		case MethodBAB:
			bab[k] = r.Seconds
		case MethodBABP:
			babp[k] = r.Seconds
		}
	}
	var out []SpeedupRow
	for k, tb := range bab {
		tp, ok := babp[k]
		if !ok || tp <= 0 {
			continue
		}
		out = append(out, SpeedupRow{Dataset: k.dataset, X: k.x, Speedup: tb / tp})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dataset != out[j].Dataset {
			return out[i].Dataset < out[j].Dataset
		}
		return out[i].X < out[j].X
	})
	return out
}

// RenderRows prints figure rows as an aligned text table grouped by
// dataset and sweep value.
func RenderRows(w io.Writer, title string, rows []Row) {
	fmt.Fprintf(w, "== %s ==\n", title)
	if len(rows) == 0 {
		fmt.Fprintln(w, "(no rows)")
		return
	}
	fmt.Fprintf(w, "%-10s %-12s %8s %12s %12s\n", "dataset", r0(rows).Param, "method", "utility", "seconds")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %-12.3g %8s %12.3f %12.4f\n", r.Dataset, r.X, r.Method, r.Utility, r.Seconds)
	}
}

func r0(rows []Row) Row { return rows[0] }

// RenderTableIII prints the dataset summary table.
func RenderTableIII(w io.Writer, rows []SummaryRow) {
	fmt.Fprintln(w, "== Table III: dataset statistics ==")
	fmt.Fprintf(w, "%-10s %10s %10s %8s %7s %9s %7s %12s\n",
		"dataset", "vertices", "edges", "avgdeg", "topics", "edgennz", "theta", "sample(s)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %10d %10d %8.2f %7d %9.2f %7d %12.3f\n",
			r.Name, r.Vertices, r.Edges, r.AvgDegree, r.Topics, r.TopicNNZ, r.Theta, r.SampleSeconds)
	}
}

// RenderSpeedups prints the speedup table.
func RenderSpeedups(w io.Writer, rows []SpeedupRow) {
	fmt.Fprintln(w, "== BAB-P speedup over BAB ==")
	fmt.Fprintf(w, "%-10s %8s %10s\n", "dataset", "x", "speedup")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %8.3g %9.1fx\n", r.Dataset, r.X, r.Speedup)
	}
}

// ParamsTable renders the paper's Table IV parameter grid.
func ParamsTable(w io.Writer) {
	fmt.Fprintln(w, "== Table IV: experiment parameters ==")
	fmt.Fprintln(w, "k          10, 20, ..., 50*, ..., 100")
	fmt.Fprintln(w, "l          1, 2, 3*, 4, 5")
	fmt.Fprintln(w, "beta/alpha 0.3, 0.5*, 0.7")
	fmt.Fprintln(w, "eps        0.1, 0.2, ..., 0.5*, ..., 0.9")
	fmt.Fprintln(w, "(* = default; beta fixed to 1; promoter pool = 10% of users)")
}

// Elapsed is a small helper used by the CLI to report wall-clock phases.
func Elapsed(start time.Time) string { return time.Since(start).Round(time.Millisecond).String() }
