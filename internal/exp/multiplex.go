package exp

import (
	"fmt"

	"oipa/internal/core"
	"oipa/internal/gen"
	"oipa/internal/graph"
	"oipa/internal/logistic"
	"oipa/internal/topic"
	"oipa/internal/traverse"
	"oipa/internal/xrand"
)

// FigureMultiplex sweeps the number of diffusion layers: layer count 1 is
// the plain single-graph workload, and each further point stacks one more
// independently generated instance of the same preset (same scale, offset
// seed) into a multiplex over the shared node universe. Utility grows
// with the layer count — every layer adds diffusion routes — which is the
// single-vs-multiplex spread comparison the serve tier's "layers" request
// field exposes. The campaign, pool, model, budget, and sampling seed are
// held fixed across points so the utilities are directly comparable.
func FigureMultiplex(c Config, maxLayers int) ([]Row, error) {
	if maxLayers < 1 {
		return nil, fmt.Errorf("exp: multiplex sweep needs at least 1 layer, got %d", maxLayers)
	}
	if maxLayers > 64 {
		return nil, fmt.Errorf("exp: %d layers beyond the serve tier's 64-layer key limit", maxLayers)
	}
	w, err := BuildWorkload(c)
	if err != nil {
		return nil, err
	}
	opts := core.DefaultBABPOptions()
	opts.Epsilon = c.Epsilon
	opts.MaxNodes = maxSearchNodes

	res, err := core.SolveBABP(w.Instance, opts)
	if err != nil {
		return nil, fmt.Errorf("exp: multiplex layers=1: %w", err)
	}
	rows := []Row{{
		Dataset: w.Dataset.Name,
		Method:  MethodBABP,
		Param:   "layers",
		X:       1,
		Utility: res.Utility,
		Seconds: res.Elapsed.Seconds(),
	}}

	layers := []graph.MultiplexLayer{{G: w.Dataset.G}}
	for a := 2; a <= maxLayers; a++ {
		// A fresh topology of the same preset and scale: same node count
		// (the generators size deterministically from scale), so the
		// identity embedding into the shared universe is total.
		extra, err := gen.Build(c.Preset, c.Scale, c.Seed+uint64(a)*7919)
		if err != nil {
			return nil, fmt.Errorf("exp: multiplex layer %d: %w", a, err)
		}
		layers = append(layers, graph.MultiplexLayer{G: extra.G})
		sel := make([]graph.MultiplexLayer, len(layers))
		copy(sel, layers)
		mx, err := graph.NewMultiplex(w.Dataset.G.N(), sel, 0)
		if err != nil {
			return nil, fmt.Errorf("exp: multiplex layer %d: %w", a, err)
		}
		prob := &core.Problem{
			Mux:      mx,
			Campaign: w.Campaign,
			Pool:     w.Pool,
			K:        c.K,
			Model:    c.Model(),
		}
		inst, err := core.Prepare(prob, c.Theta, c.Seed+3000)
		if err != nil {
			return nil, fmt.Errorf("exp: multiplex layers=%d: %w", a, err)
		}
		res, err := core.SolveBABP(inst, opts)
		if err != nil {
			return nil, fmt.Errorf("exp: multiplex layers=%d: %w", a, err)
		}
		rows = append(rows, Row{
			Dataset: w.Dataset.Name,
			Method:  MethodBABP,
			Param:   "layers",
			X:       float64(a),
			Utility: res.Utility,
			Seconds: res.Elapsed.Seconds(),
		})
	}
	return rows, nil
}

// MultiplexCheck is the cross-check bundle the CI smoke test compares
// against a live oipa-serve answer: a solve over the same multiplex with
// the server's exact preparation and solver settings, plus a per-sample
// replay of every MRR sample through the explicit gateway-node combined
// graph. ReductionOK certifies that the layer-coupled sampler and the
// combined-graph reduction agree verbatim on this workload.
type MultiplexCheck struct {
	Layers         int       `json:"layers"`
	UniverseN      int       `json:"universe_n"`
	Theta          int       `json:"theta"`
	Seed           uint64    `json:"seed"`
	K              int       `json:"k"`
	Pieces         int       `json:"pieces"`
	Utility        float64   `json:"utility"`
	Upper          float64   `json:"upper"`
	Plan           [][]int32 `json:"plan"`
	ReductionOK    bool      `json:"reduction_ok"`
	SamplesChecked int       `json:"samples_checked"`
}

// CheckMultiplex loads the base graph and the extra layer files, prepares
// the multiplex instance exactly as a default-flag oipa-serve would for a
// solve with "layers" selecting every layer (pool fraction 0.10 at pool
// seed 2, beta/alpha 0.5, an l-piece single-topic campaign on topics
// 0..l-1), runs the server's non-sketch "bab" configuration, and replays
// every sample against the combined-graph reduction. The returned bundle
// is what `oipa-exp -exp multiplex-check` prints as JSON for the CI jq
// comparison against the live /v1/solve response.
func CheckMultiplex(basePath string, layerPaths []string, l, k, theta int, seed uint64) (*MultiplexCheck, error) {
	base, err := graph.Load(basePath)
	if err != nil {
		return nil, fmt.Errorf("exp: base graph: %w", err)
	}
	layers := []graph.MultiplexLayer{{G: base}}
	for _, p := range layerPaths {
		lg, err := graph.Load(p)
		if err != nil {
			return nil, fmt.Errorf("exp: layer %s: %w", p, err)
		}
		layers = append(layers, graph.MultiplexLayer{G: lg})
	}
	mx, err := graph.NewMultiplex(base.N(), layers, 0)
	if err != nil {
		return nil, err
	}
	if l < 1 || l > base.Z() {
		return nil, fmt.Errorf("exp: %d pieces outside [1, %d]", l, base.Z())
	}
	campaign := topic.Campaign{Name: "multiplex-check"}
	for j := 0; j < l; j++ {
		campaign.Pieces = append(campaign.Pieces, topic.Piece{
			Name: fmt.Sprintf("piece-%d", j),
			Dist: topic.SingleTopic(int32(j)),
		})
	}
	// oipa-serve defaults: -pool 0.10 -poolseed 2 -ratio 0.5 (beta=1).
	pool, err := gen.PromoterPool(base, 0.10, 2)
	if err != nil {
		return nil, err
	}
	prob := &core.Problem{
		Mux:      mx,
		Campaign: campaign,
		Pool:     pool,
		K:        k,
		Model:    logistic.Model{Alpha: 2, Beta: 1},
	}
	inst, err := core.Prepare(prob, theta, seed)
	if err != nil {
		return nil, err
	}
	// The serve tier's "bab" method with sketches disabled: exact-gap
	// branch and bound, uncapped, FillAfterFloor on. Bit-for-bit the
	// solve a non-sketch server runs, so float64 equality holds between
	// this utility/plan and the /v1/solve response.
	res, err := core.SolveBAB(inst, core.BABOptions{
		Epsilon:        0.5,
		Tolerance:      0.01,
		RawGap:         true,
		FillAfterFloor: true,
	})
	if err != nil {
		return nil, err
	}
	out := &MultiplexCheck{
		Layers:    mx.L(),
		UniverseN: mx.N(),
		Theta:     theta,
		Seed:      seed,
		K:         k,
		Pieces:    campaign.L(),
		Utility:   res.Utility,
		Upper:     res.Upper,
		Plan:      res.Plan.Seeds,
	}
	if out.Plan == nil {
		out.Plan = [][]int32{}
	}
	out.ReductionOK, out.SamplesChecked, err = replayCombined(mx, campaign, inst, theta, seed)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// replayCombined re-derives every sample's RNG and walks the explicit
// gateway-node combined graph with the plain single-graph walker; the
// filtered visit order must reproduce each stored MRR set verbatim.
func replayCombined(mx *graph.Multiplex, campaign topic.Campaign, inst *core.Instance, theta int, seed uint64) (bool, int, error) {
	comb, err := mx.CombinedGraph()
	if err != nil {
		return false, 0, err
	}
	combLays := make([]*graph.PieceLayout, campaign.L())
	for j, piece := range campaign.Pieces {
		lay, err := comb.Layout(comb.PieceProbs(piece.Dist))
		if err != nil {
			return false, 0, err
		}
		combLays[j] = lay
	}
	inOff, inFrom := comb.InCSR()
	w := traverse.NewWalker(comb.N())
	n := uint64(mx.N())
	for i := 0; i < theta; i++ {
		rng := xrand.Derive(seed, uint64(i))
		root := int32(rng.Uint64n(n))
		if root != inst.MRR.Root(i) {
			return false, i, nil
		}
		for j := range campaign.Pieces {
			visited := w.RunFrom(inOff, inFrom, combLays[j].InDist, combLays[j].InProbs, root, rng)
			var want []int32
			for _, v := range visited {
				if int(v) < mx.N() {
					want = append(want, v)
				}
			}
			got := inst.MRR.Set(i, j)
			if len(got) != len(want) {
				return false, i, nil
			}
			for x := range got {
				if got[x] != want[x] {
					return false, i, nil
				}
			}
		}
	}
	return true, theta, nil
}
