package exp

import (
	"path/filepath"
	"testing"

	"oipa/internal/gen"
)

func tinyMultiplexConfig() Config {
	c := SmallConfig(gen.PresetLastfm)
	c.Scale = 0.05
	c.Theta = 500
	c.K = 5
	c.L = 2
	return c
}

func TestFigureMultiplex(t *testing.T) {
	c := tinyMultiplexConfig()
	rows, err := FigureMultiplex(c, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	for i, r := range rows {
		if r.Param != "layers" || r.X != float64(i+1) {
			t.Fatalf("row %d: param %q x %v, want layers %d", i, r.Param, r.X, i+1)
		}
		if r.Method != MethodBABP {
			t.Fatalf("row %d: method %q", i, r.Method)
		}
		if r.Utility <= 0 {
			t.Fatalf("row %d: utility %v", i, r.Utility)
		}
	}
	if _, err := FigureMultiplex(c, 0); err == nil {
		t.Fatal("accepted an empty sweep")
	}
	if _, err := FigureMultiplex(c, 65); err == nil {
		t.Fatal("accepted a sweep beyond the 64-layer key limit")
	}
}

// TestCheckMultiplex exercises the CI cross-check bundle end to end on
// stored graph files: the combined-graph replay must certify every
// sample, and the solve must produce a usable plan.
func TestCheckMultiplex(t *testing.T) {
	dir := t.TempDir()
	base, err := gen.LastfmSim(0.05, 11)
	if err != nil {
		t.Fatal(err)
	}
	layer, err := gen.LastfmSim(0.05, 77)
	if err != nil {
		t.Fatal(err)
	}
	basePath := filepath.Join(dir, "base.graph")
	layerPath := filepath.Join(dir, "layer.graph")
	if err := base.G.Save(basePath); err != nil {
		t.Fatal(err)
	}
	if err := layer.G.Save(layerPath); err != nil {
		t.Fatal(err)
	}

	const l, k, theta, seed = 2, 5, 400, 3
	chk, err := CheckMultiplex(basePath, []string{layerPath}, l, k, theta, seed)
	if err != nil {
		t.Fatal(err)
	}
	if chk.Layers != 2 || chk.UniverseN != base.G.N() || chk.Pieces != l {
		t.Fatalf("shape: %+v", chk)
	}
	if !chk.ReductionOK {
		t.Fatalf("combined-graph reduction diverged at sample %d", chk.SamplesChecked)
	}
	if chk.SamplesChecked != theta {
		t.Fatalf("samples checked %d, want %d", chk.SamplesChecked, theta)
	}
	if chk.Utility <= 0 || chk.Upper < chk.Utility {
		t.Fatalf("utility %v upper %v", chk.Utility, chk.Upper)
	}
	if len(chk.Plan) != l {
		t.Fatalf("plan has %d rows, want %d", len(chk.Plan), l)
	}
	seeds := 0
	for _, row := range chk.Plan {
		seeds += len(row)
	}
	if seeds == 0 || seeds > k {
		t.Fatalf("plan places %d seeds, budget %d", seeds, k)
	}

	if _, err := CheckMultiplex(basePath, []string{layerPath}, 0, k, theta, seed); err == nil {
		t.Fatal("accepted an empty campaign")
	}
	if _, err := CheckMultiplex(filepath.Join(dir, "missing.graph"), nil, l, k, theta, seed); err == nil {
		t.Fatal("accepted a missing base graph")
	}
}
