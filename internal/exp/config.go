// Package exp is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (§VI) on the synthetic dataset
// substitutes, producing the same rows/series the paper plots. Absolute
// numbers differ from the paper's testbed; the *shapes* — method
// orderings, trends in k/ℓ/(β/α), and the BAB-P speedup — are the
// reproduction targets (see DESIGN.md §4 and EXPERIMENTS.md).
package exp

import (
	"fmt"
	"time"

	"oipa/internal/core"
	"oipa/internal/gen"
	"oipa/internal/graph"
	"oipa/internal/logistic"
	"oipa/internal/topic"
	"oipa/internal/xrand"
)

// Config describes one dataset configuration for an experiment run.
type Config struct {
	Preset       gen.Preset
	Scale        float64 // dataset scale relative to the paper's full size
	Seed         uint64
	Theta        int     // MRR samples (the paper fixes 10^6; scaled here)
	PoolFraction float64 // promoter pool fraction (paper: 10%)

	// Default campaign parameters (Table IV defaults in bold): k = 50,
	// ℓ = 3, β/α = 0.5, ε = 0.5.
	K             int
	L             int
	BetaOverAlpha float64
	Epsilon       float64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Scale <= 0 {
		return fmt.Errorf("exp: scale %v must be positive", c.Scale)
	}
	if c.Theta <= 0 {
		return fmt.Errorf("exp: theta %d must be positive", c.Theta)
	}
	if c.PoolFraction <= 0 || c.PoolFraction > 1 {
		return fmt.Errorf("exp: pool fraction %v outside (0,1]", c.PoolFraction)
	}
	if c.K <= 0 || c.L <= 0 {
		return fmt.Errorf("exp: k=%d, l=%d must be positive", c.K, c.L)
	}
	if c.BetaOverAlpha <= 0 {
		return fmt.Errorf("exp: beta/alpha %v must be positive", c.BetaOverAlpha)
	}
	if c.Epsilon <= 0 {
		return fmt.Errorf("exp: epsilon %v must be positive", c.Epsilon)
	}
	return nil
}

// Model converts the β/α ratio into the logistic model with β fixed to 1,
// as the paper does ("We fix β = 1 and vary β/α", §VI-A).
func (c Config) Model() logistic.Model {
	return logistic.Model{Alpha: 1 / c.BetaOverAlpha, Beta: 1}
}

// DefaultConfig returns the laptop-scale default for a preset: lastfm at
// full size, dblp at 1/50, tweet at 1/200, with θ scaled to keep harness
// runs in minutes rather than hours (the paper's fixed θ=10^6 is
// reachable via cmd/oipa-exp flags).
func DefaultConfig(p gen.Preset) Config {
	c := Config{
		Preset:        p,
		Seed:          1,
		PoolFraction:  0.10,
		K:             50,
		L:             3,
		BetaOverAlpha: 0.5,
		Epsilon:       0.5,
	}
	switch p {
	case gen.PresetLastfm:
		c.Scale, c.Theta = 1, 100_000
	case gen.PresetDBLP:
		c.Scale, c.Theta = 0.02, 100_000
	case gen.PresetTweet:
		c.Scale, c.Theta = 0.005, 100_000
	default:
		c.Scale, c.Theta = 1, 100_000
	}
	return c
}

// SmallConfig returns a shrunken configuration for benchmarks and smoke
// tests: everything is an order of magnitude smaller so a full
// figure regeneration completes in seconds.
func SmallConfig(p gen.Preset) Config {
	c := DefaultConfig(p)
	c.Theta = 10_000
	c.K = 10
	switch p {
	case gen.PresetLastfm:
		c.Scale = 0.3
	case gen.PresetDBLP:
		c.Scale = 0.004
	case gen.PresetTweet:
		c.Scale = 0.001
	}
	return c
}

// Workload bundles a generated dataset with the prepared OIPA instance
// shared by every method in an experiment (the paper grants all methods
// the same θ samples).
type Workload struct {
	Config    Config
	Dataset   *gen.Dataset
	Campaign  topic.Campaign
	Pool      []int32
	Instance  *core.Instance
	BuildTime time.Duration

	// Layouts caches the dataset's piece layouts by topic-vector hash.
	// Instance preparation routes through it, so sweeps that re-prepare
	// over recurring pieces (DeriveCampaign: Figure 5's nested
	// campaigns) stop rebuilding identical layouts.
	Layouts *graph.LayoutCache
}

// BuildWorkload generates the dataset, draws the campaign (uniform
// single-topic pieces, §VI-A), selects the promoter pool and prepares the
// MRR instance.
func BuildWorkload(c Config) (*Workload, error) {
	return buildWorkload(c, nil)
}

// BuildWorkloadWithCampaign is BuildWorkload with an explicit campaign —
// used by sweeps that need *nested* campaigns (Figure 5 evaluates the
// prefixes of one fixed piece list so utility is comparable across ℓ).
func BuildWorkloadWithCampaign(c Config, campaign topic.Campaign) (*Workload, error) {
	return buildWorkload(c, &campaign)
}

func buildWorkload(c Config, explicit *topic.Campaign) (*Workload, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	d, err := gen.Build(c.Preset, c.Scale, c.Seed)
	if err != nil {
		return nil, err
	}
	var campaign topic.Campaign
	if explicit != nil {
		campaign = *explicit
		if campaign.L() != c.L {
			return nil, fmt.Errorf("exp: campaign has %d pieces, config says %d", campaign.L(), c.L)
		}
	} else {
		rng := xrand.New(c.Seed + 1000)
		campaign = topic.UniformCampaign(string(c.Preset), c.L, d.Z(), rng)
	}
	pool, err := gen.PromoterPool(d.G, c.PoolFraction, c.Seed+2000)
	if err != nil {
		return nil, err
	}
	// Unbounded cache: a sweep touches at most a handful of distinct
	// pieces, and the workload's lifetime is the experiment run.
	cache := graph.NewLayoutCache(d.G, 0)
	inst, err := prepareCached(cache, d, campaign, pool, c)
	if err != nil {
		return nil, err
	}
	return &Workload{
		Config:    c,
		Dataset:   d,
		Campaign:  campaign,
		Pool:      pool,
		Instance:  inst,
		BuildTime: time.Since(start),
		Layouts:   cache,
	}, nil
}

// prepareCached prepares an instance with the per-piece layouts served
// from the workload's layout cache (core.PrepareLayouts instead of
// core.Prepare, which would rebuild every layout from scratch).
func prepareCached(cache *graph.LayoutCache, d *gen.Dataset, campaign topic.Campaign, pool []int32, c Config) (*core.Instance, error) {
	layouts := make([]*graph.PieceLayout, campaign.L())
	for j, piece := range campaign.Pieces {
		lay, err := cache.Get(piece.Dist)
		if err != nil {
			return nil, fmt.Errorf("exp: piece %d: %w", j, err)
		}
		layouts[j] = lay
	}
	prob := &core.Problem{
		G:        d.G,
		Campaign: campaign,
		Pool:     pool,
		K:        c.K,
		Model:    c.Model(),
	}
	return core.PrepareLayouts(prob, layouts, c.Theta, c.Seed+3000)
}

// DeriveCampaign prepares a workload for a different campaign over this
// workload's dataset, reusing its layout cache (pieces recurring across
// the sweep — Figure 5 evaluates nested prefixes of one piece list —
// hit cached layouts instead of being rebuilt) and, when the pool
// fraction is unchanged, its promoter pool. The dataset is NOT
// regenerated, so c must describe the workload's (preset, scale, seed)
// dataset — a mismatch is an error, not a silent wrong-graph run.
func (w *Workload) DeriveCampaign(c Config, campaign topic.Campaign) (*Workload, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if campaign.L() != c.L {
		return nil, fmt.Errorf("exp: campaign has %d pieces, config says %d", campaign.L(), c.L)
	}
	if c.Preset != w.Config.Preset || c.Scale != w.Config.Scale || c.Seed != w.Config.Seed {
		return nil, fmt.Errorf("exp: derived config describes dataset (%s, scale %v, seed %d), workload holds (%s, scale %v, seed %d)",
			c.Preset, c.Scale, c.Seed, w.Config.Preset, w.Config.Scale, w.Config.Seed)
	}
	start := time.Now()
	pool := w.Pool
	if c.PoolFraction != w.Config.PoolFraction {
		var err error
		if pool, err = gen.PromoterPool(w.Dataset.G, c.PoolFraction, c.Seed+2000); err != nil {
			return nil, err
		}
	}
	inst, err := prepareCached(w.Layouts, w.Dataset, campaign, pool, c)
	if err != nil {
		return nil, err
	}
	return &Workload{
		Config:    c,
		Dataset:   w.Dataset,
		Campaign:  campaign,
		Pool:      pool,
		Instance:  inst,
		BuildTime: time.Since(start),
		Layouts:   w.Layouts,
	}, nil
}
