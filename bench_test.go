// Package oipa_bench regenerates every table and figure of the paper's
// evaluation (§VI) as Go benchmarks, plus the ablations called out in
// DESIGN.md §5. Each benchmark runs a figure's workload at smoke scale so
// `go test -bench=.` completes on a laptop; cmd/oipa-exp runs the same
// sweeps at full scale with text output.
//
// Mapping (see DESIGN.md §4):
//
//	Table III  -> BenchmarkTableIII_SampleTime
//	Figure 3   -> BenchmarkFigure3_EpsilonSweep
//	Figure 4   -> BenchmarkFigure4_VaryK
//	Figure 5   -> BenchmarkFigure5_VaryL
//	Figure 6   -> BenchmarkFigure6_VaryBetaAlpha
//	§VI-C      -> BenchmarkSpeedup_BABvsBABP
//	Ablations  -> BenchmarkAblation_*
package oipa_bench

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"oipa/internal/core"
	"oipa/internal/exp"
	"oipa/internal/gen"
	"oipa/internal/logistic"
	"oipa/internal/rrset"
)

// sharedWorkload caches one small workload per preset so benchmarks do
// not pay dataset generation repeatedly.
var (
	workloadOnce sync.Once
	workloads    map[gen.Preset]*exp.Workload
)

func getWorkload(b *testing.B, p gen.Preset) *exp.Workload {
	b.Helper()
	workloadOnce.Do(func() {
		workloads = map[gen.Preset]*exp.Workload{}
		for _, preset := range gen.Presets {
			cfg := exp.SmallConfig(preset)
			w, err := exp.BuildWorkload(cfg)
			if err != nil {
				panic(err)
			}
			workloads[preset] = w
		}
	})
	w, ok := workloads[p]
	if !ok {
		b.Fatalf("no workload for preset %s", p)
	}
	return w
}

// BenchmarkTableIII_SampleTime measures MRR sampling throughput per
// dataset — the "Sample Time" row of Table III.
func BenchmarkTableIII_SampleTime(b *testing.B) {
	for _, preset := range gen.Presets {
		w := getWorkload(b, preset)
		b.Run(string(preset), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := rrset.SampleMRR(w.Dataset.G, w.Instance.PieceProbs,
					w.Config.Theta, uint64(i))
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFigure3_EpsilonSweep times BAB-P across the ε grid (Fig. 3)
// and reports the achieved utility per ε.
func BenchmarkFigure3_EpsilonSweep(b *testing.B) {
	w := getWorkload(b, gen.PresetLastfm)
	for _, eps := range []float64{0.1, 0.5, 0.9} {
		b.Run(fmt.Sprintf("eps=%.1f", eps), func(b *testing.B) {
			var util float64
			for i := 0; i < b.N; i++ {
				res, err := core.SolveBABP(w.Instance, core.BABOptions{
					Progressive: true, Epsilon: eps, Tolerance: 0.01,
				})
				if err != nil {
					b.Fatal(err)
				}
				util = res.Utility
			}
			b.ReportMetric(util, "utility")
		})
	}
}

// BenchmarkFigure4_VaryK times all four methods at two budgets (Fig. 4).
func BenchmarkFigure4_VaryK(b *testing.B) {
	w := getWorkload(b, gen.PresetLastfm)
	for _, k := range []int{5, 20} {
		inst, err := w.Instance.WithK(k)
		if err != nil {
			b.Fatal(err)
		}
		for _, method := range exp.AllMethods() {
			b.Run(fmt.Sprintf("k=%d/%s", k, method), func(b *testing.B) {
				var util float64
				for i := 0; i < b.N; i++ {
					res, err := solveByName(inst, method)
					if err != nil {
						b.Fatal(err)
					}
					util = res.Utility
				}
				b.ReportMetric(util, "utility")
			})
		}
	}
}

// BenchmarkFigure5_VaryL times all methods across campaign sizes
// (Fig. 5). ℓ changes the MRR samples, so workloads are built per ℓ.
func BenchmarkFigure5_VaryL(b *testing.B) {
	cfg := exp.SmallConfig(gen.PresetLastfm)
	for _, l := range []int{1, 3, 5} {
		cl := cfg
		cl.L = l
		w, err := exp.BuildWorkload(cl)
		if err != nil {
			b.Fatal(err)
		}
		for _, method := range []string{exp.MethodTIM, exp.MethodBABP} {
			b.Run(fmt.Sprintf("l=%d/%s", l, method), func(b *testing.B) {
				var util float64
				for i := 0; i < b.N; i++ {
					res, err := solveByName(w.Instance, method)
					if err != nil {
						b.Fatal(err)
					}
					util = res.Utility
				}
				b.ReportMetric(util, "utility")
			})
		}
	}
}

// BenchmarkFigure6_VaryBetaAlpha times TIM and BAB-P across adoption
// difficulties (Fig. 6); the utility metric shows BAB-P's advantage
// growing as β/α shrinks.
func BenchmarkFigure6_VaryBetaAlpha(b *testing.B) {
	w := getWorkload(b, gen.PresetTweet)
	for _, ratio := range []float64{0.3, 0.5, 0.7} {
		inst, err := w.Instance.WithModel(logistic.Model{Alpha: 1 / ratio, Beta: 1})
		if err != nil {
			b.Fatal(err)
		}
		for _, method := range []string{exp.MethodTIM, exp.MethodBABP} {
			b.Run(fmt.Sprintf("ratio=%.1f/%s", ratio, method), func(b *testing.B) {
				var util float64
				for i := 0; i < b.N; i++ {
					res, err := solveByName(inst, method)
					if err != nil {
						b.Fatal(err)
					}
					util = res.Utility
				}
				b.ReportMetric(util, "utility")
			})
		}
	}
}

// BenchmarkSpeedup_BABvsBABP times the plain and progressive searches on
// the same instance — the §VI-C speedup claim in microcosm.
func BenchmarkSpeedup_BABvsBABP(b *testing.B) {
	w := getWorkload(b, gen.PresetDBLP)
	inst, err := w.Instance.WithK(20)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("BAB", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.SolveBAB(inst, core.DefaultBABOptions()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("BAB-P", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.SolveBABP(inst, core.DefaultBABPOptions()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblation_BoundCap compares the default hull bound against the
// paper-literal tangent construction (capped and uncapped): same search,
// different pruning tightness.
func BenchmarkAblation_BoundCap(b *testing.B) {
	w := getWorkload(b, gen.PresetLastfm)
	for _, mode := range []logistic.BoundMode{
		logistic.BoundHull, logistic.BoundTangent, logistic.BoundTangentUncapped,
	} {
		inst, err := w.Instance.WithBoundMode(mode)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(mode.String(), func(b *testing.B) {
			var nodes int
			for i := 0; i < b.N; i++ {
				res, err := core.SolveBAB(inst, core.BABOptions{Tolerance: 0.01, MaxNodes: 200})
				if err != nil {
					b.Fatal(err)
				}
				nodes = res.Stats.Nodes
			}
			b.ReportMetric(float64(nodes), "nodes")
		})
	}
}

// BenchmarkAblation_CELFBound compares the plain O(k·n)-scan greedy bound
// against its CELF lazy-evaluation variant (identical results by
// construction; see internal/core/lazy.go).
func BenchmarkAblation_CELFBound(b *testing.B) {
	w := getWorkload(b, gen.PresetLastfm)
	inst, err := w.Instance.WithK(20)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.SolveGreedy(inst, core.BABOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("celf", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.SolveGreedy(inst, core.BABOptions{Lazy: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblation_ParallelSampling measures the deterministic parallel
// MRR sampler against a single-threaded run.
func BenchmarkAblation_ParallelSampling(b *testing.B) {
	w := getWorkload(b, gen.PresetDBLP)
	b.Run("serial", func(b *testing.B) {
		old := runtime.GOMAXPROCS(1)
		defer runtime.GOMAXPROCS(old)
		for i := 0; i < b.N; i++ {
			if _, err := rrset.SampleMRR(w.Dataset.G, w.Instance.PieceProbs, w.Config.Theta, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := rrset.SampleMRR(w.Dataset.G, w.Instance.PieceProbs, w.Config.Theta, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblation_EpsilonSchedule isolates the progressive estimator's
// ε sensitivity at the bound level (one ComputeBoundPro per iteration via
// the greedy solver).
func BenchmarkAblation_EpsilonSchedule(b *testing.B) {
	w := getWorkload(b, gen.PresetLastfm)
	for _, eps := range []float64{0.1, 0.3, 0.5, 0.9} {
		b.Run(fmt.Sprintf("eps=%.1f", eps), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := core.SolveGreedy(w.Instance, core.BABOptions{Progressive: true, Epsilon: eps})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func solveByName(inst *core.Instance, method string) (*core.Result, error) {
	switch method {
	case exp.MethodIM:
		return core.SolveIM(inst, 0xBEEF)
	case exp.MethodTIM:
		return core.SolveTIM(inst)
	case exp.MethodBAB:
		return core.SolveBAB(inst, core.DefaultBABOptions())
	case exp.MethodBABP:
		return core.SolveBABP(inst, core.DefaultBABPOptions())
	}
	return nil, fmt.Errorf("unknown method %q", method)
}
